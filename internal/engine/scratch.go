package engine

import "context"

// TasksWithScratch is Tasks with per-worker scratch state: it lazily
// builds one S per worker goroutine (a worker that never claims a task
// never pays for a scratch) and passes the claiming worker's scratch to
// every run call, replacing the worker-index bookkeeping each miner used
// to hand-roll.
//
// The determinism contract is inherited from Tasks, with one addition the
// callers must honor: scratch state may carry over between tasks on the
// same worker, and which tasks share a worker is scheduling-dependent, so
// run must leave nothing in the scratch that can influence a later task's
// output — pools and arenas (whose reuse changes allocation, never
// values) are fine; memoization caches keyed on prior tasks are not.
func TasksWithScratch[S any](ctx context.Context, workers, n int, newScratch func() S, run func(sc S, task int)) (stopped bool) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	scratches := make([]S, workers)
	ready := make([]bool, workers)
	return Tasks(ctx, workers, n, func(worker, task int) {
		if !ready[worker] {
			scratches[worker] = newScratch()
			ready[worker] = true
		}
		run(scratches[worker], task)
	})
}
