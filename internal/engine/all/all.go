// Package all registers every miner in the repository with the engine
// registry via blank imports. Import it for side effects wherever the full
// algorithm set must be reachable by name (the CLIs, the job server, the
// conformance tests):
//
//	import _ "repro/internal/engine/all"
package all

import (
	_ "repro/internal/apriori"
	_ "repro/internal/carpenter"
	_ "repro/internal/charm"
	_ "repro/internal/core"
	_ "repro/internal/eclat"
	_ "repro/internal/fpgrowth"
	_ "repro/internal/maximal"
	_ "repro/internal/seqfusion"
	_ "repro/internal/topk"
)
