package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"repro/internal/dataset"
)

// WirePattern is one pattern in a Report's canonical wire encoding:
// items and memoized support, no TID payload. TID sets are a single-node
// acceleration structure, not part of the observable answer — the job
// store and the HTTP result endpoint already drop them — so the
// distributed layer's byte-identity guarantee is pinned at this
// boundary.
type WirePattern struct {
	Items   []int `json:"items"`
	Support int   `json:"support"`
}

// WireReport is the canonical serializable form of a Report. It carries
// every field the determinism conformance tests observe, in a fixed
// order, so that Encode bytes (and their sha256) are a pure function of
// the Report's observable content.
type WireReport struct {
	Algorithm    string        `json:"algorithm"`
	Patterns     []WirePattern `json:"patterns"`
	InitPoolSize int           `json:"init_pool_size"`
	Iterations   int           `json:"iterations"`
	Visited      int           `json:"visited"`
	Stopped      bool          `json:"stopped"`
	Warnings     []string      `json:"warnings"`
	// Quality is omitted when the algorithm reports none, so the
	// encodings (and hashes) of the quality-less miners are unchanged.
	Quality *Quality `json:"quality,omitempty"`
}

// ToWire converts a Report to its wire form.
func ToWire(rep *Report) WireReport {
	w := WireReport{
		Algorithm:    rep.Algorithm,
		Patterns:     make([]WirePattern, 0, len(rep.Patterns)),
		InitPoolSize: rep.InitPoolSize,
		Iterations:   rep.Iterations,
		Visited:      rep.Visited,
		Stopped:      rep.Stopped,
		Warnings:     rep.Warnings,
	}
	if rep.Quality != nil {
		q := *rep.Quality
		w.Quality = &q
	}
	for _, p := range rep.Patterns {
		w.Patterns = append(w.Patterns, WirePattern{Items: append([]int{}, p.Items...), Support: p.Support()})
	}
	return w
}

// FromWire reconstructs a Report from its wire form. Patterns carry
// memoized supports but nil TID sets, matching what horizontal miners
// (fpgrowth) produce natively.
func (w WireReport) FromWire() *Report {
	rep := &Report{
		Algorithm:    w.Algorithm,
		InitPoolSize: w.InitPoolSize,
		Iterations:   w.Iterations,
		Visited:      w.Visited,
		Stopped:      w.Stopped,
		Warnings:     w.Warnings,
	}
	if w.Quality != nil {
		q := *w.Quality
		rep.Quality = &q
	}
	if len(w.Patterns) > 0 {
		rep.Patterns = make([]*dataset.Pattern, 0, len(w.Patterns))
		for _, p := range w.Patterns {
			rep.Patterns = append(rep.Patterns, dataset.NewPatternCounted(append([]int{}, p.Items...), nil, p.Support))
		}
	}
	return rep
}

// EncodeReport renders a Report to canonical JSON bytes. Two Reports
// with the same observable content encode identically; this is the
// byte-identity boundary the distributed merge is held to.
func EncodeReport(rep *Report) []byte {
	b, err := json.Marshal(ToWire(rep))
	if err != nil {
		// Only unmarshalable values can fail here; WireReport has none.
		panic("engine: encoding report: " + err.Error())
	}
	return b
}

// DecodeReport parses canonical Report bytes produced by EncodeReport.
func DecodeReport(b []byte) (*Report, error) {
	var w WireReport
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, err
	}
	return w.FromWire(), nil
}

// ReportHash returns the hex sha256 of a Report's canonical encoding.
func ReportHash(rep *Report) string {
	sum := sha256.Sum256(EncodeReport(rep))
	return hex.EncodeToString(sum[:])
}
