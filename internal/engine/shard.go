package engine

import (
	"context"
	"fmt"

	"repro/internal/dataset"
)

// Sharder is the optional distribution interface a miner implements when
// its search decomposes into the same static task blocks the Tasks
// scheduler seeds its worker deques with. A shard is a contiguous range
// [lo, hi) of those task units; because the units and their order are a
// pure function of (dataset, options), two processes that agree on the
// dataset bytes agree on the decomposition, and a coordinator can lease
// ranges to remote workers and merge the partial reports back into the
// byte-identical single-node answer.
//
// The contract, which the distributed conformance tests pin:
//
//   - ShardUnits(d, opts) returns the task-unit count N. Zero means the
//     run is degenerate (empty class, single-path tree, root-handled) and
//     must be executed whole via Mine rather than sharded.
//   - MineShard(ctx, d, opts, lo, hi) mines exactly the units in [lo, hi)
//     and returns a RAW partial report: Patterns in the miner's internal
//     task order (NOT SortPatterns order), no Warnings, Algorithm stamped.
//     Any root/dispatcher work outside the task decomposition is
//     attributed to the lo == 0 shard only, so that summing shard
//     counters reproduces the single-node counters.
//   - MergeShards(d, opts, parts) merges partial reports given in shard
//     order (parts[i] covers an earlier range than parts[i+1]) into the
//     final Report, applying the same Run bracketing (Warnings, sorting)
//     a single-node Mine would. len(parts) ≥ 1; the concatenation of the
//     parts' ranges must cover [0, N) exactly.
//
// Mine(ctx, d, opts) remains the single-node entry point and must equal
// MergeShards(d, opts, [MineShard(0, N)]).
type Sharder interface {
	Algorithm
	// ShardUnits returns the number of deterministic task units the run
	// decomposes into, or 0 if the run cannot be sharded (degenerate
	// shapes handled entirely at the root).
	ShardUnits(d *dataset.Dataset, opts Options) int
	// MineShard mines task units [lo, hi) and returns the raw partial
	// report (unsorted, unbracketed).
	MineShard(ctx context.Context, d *dataset.Dataset, opts Options, lo, hi int) (*Report, error)
	// MergeShards merges raw partial reports, given in shard order, into
	// the final bracketed Report.
	MergeShards(d *dataset.Dataset, opts Options, parts []*Report) (*Report, error)
}

// AsSharder returns the Sharder view of a if it implements one.
func AsSharder(a Algorithm) (Sharder, bool) {
	s, ok := a.(Sharder)
	return s, ok
}

// ValidateShard checks the uniform MineShard preconditions shared by
// every Sharder: a non-negative worker count (mirroring Run) and a
// non-empty range inside [0, units). Callers recompute units from
// (d, opts), so a worker whose rebuilt dataset decomposes differently
// than the coordinator planned fails loudly here instead of mining the
// wrong subtrees.
func ValidateShard(name string, opts Options, lo, hi, units int) error {
	if opts.Parallelism < 0 {
		return fmt.Errorf("engine: Parallelism must be >= 0, got %d", opts.Parallelism)
	}
	if lo < 0 || hi > units || lo >= hi {
		return fmt.Errorf("engine: %s shard [%d,%d) invalid for %d task units", name, lo, hi, units)
	}
	return nil
}

// MergeConcat is the generic shard merge for miners whose per-task
// results are independent: it concatenates Patterns in shard order, sums
// Visited, and ORs Stopped, then brackets the result with Run under the
// given name and uses. It is exactly the merge the in-process schedulers
// perform in task order, lifted to shard granularity.
func MergeConcat(name string, opts Options, uses Uses, parts []*Report) (*Report, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("engine: MergeShards(%s) needs at least one part", name)
	}
	return Run(name, opts, uses, func() (*Report, error) {
		res := &Report{}
		for _, p := range parts {
			res.Patterns = append(res.Patterns, p.Patterns...)
			res.Visited += p.Visited
			res.Stopped = res.Stopped || p.Stopped
		}
		return res, nil
	})
}
